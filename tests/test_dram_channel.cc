/** @file Unit tests for the DRAM channel timing model. */

#include <gtest/gtest.h>

#include "dram/channel.hh"

namespace fpc {
namespace {

DramChannel
makeChannel(PagePolicy policy = PagePolicy::Open)
{
    DramTimingParams t = DramTimingParams::ddr3_1600_offchip();
    t.policy = policy;
    return DramChannel(t, DramEnergyParams::offchipDdr3(), "ch");
}

TEST(DramChannel, ColdReadLatency)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    DramAccessResult r = ch.access(100, 0x0, false, 1);
    // ACT at 100, CAS at 100+tRCD, data at +tCAS, ready +tBurst.
    EXPECT_EQ(r.firstBlockReady,
              100 + t.tRCD + t.tCAS + t.tBurst);
    EXPECT_FALSE(r.rowHit);
}

TEST(DramChannel, RowHitFasterThanRowMiss)
{
    DramChannel ch = makeChannel();
    Cycle t0 = 0;
    DramAccessResult miss = ch.access(t0, 0x0, false, 1);
    // Same row, later access: no ACT needed.
    DramAccessResult hit = ch.access(miss.done + 1000, 0x40,
                                     false, 1);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_LT(hit.firstBlockReady - (miss.done + 1000),
              miss.firstBlockReady - t0);
}

TEST(DramChannel, RowConflictSlowerThanColdMiss)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    ch.access(0, 0x0, false, 1); // opens row 0 of bank 0
    // Conflicting row in the same bank (banks stride rowBytes).
    Addr conflict = static_cast<Addr>(t.rowBytes) * t.numBanks;
    Cycle start = 10000;
    DramAccessResult r = ch.access(start, conflict, false, 1);
    EXPECT_FALSE(r.rowHit);
    EXPECT_GT(r.firstBlockReady - start,
              t.tRCD + t.tCAS + t.tBurst); // paid precharge
    EXPECT_EQ(ch.rowConflicts(), 1u);
}

TEST(DramChannel, ClosedPagePolicyNeverRowHits)
{
    DramChannel ch = makeChannel(PagePolicy::Closed);
    ch.access(0, 0x0, false, 1);
    DramAccessResult r = ch.access(5000, 0x40, false, 1);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(ch.rowHits(), 0u);
    EXPECT_EQ(ch.activates(), 2u);
}

TEST(DramChannel, MultiBlockBurstOccupiesBus)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    DramAccessResult r = ch.access(0, 0x0, false, 8);
    EXPECT_EQ(r.done - r.firstBlockReady,
              7 * t.tBurst); // streaming at bus rate
    EXPECT_EQ(ch.blocksRead(), 8u);
    EXPECT_EQ(ch.busBusyCycles(), 8 * t.tBurst);
}

TEST(DramChannel, BurstCrossingRowBoundaryActivatesTwice)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    const unsigned row_blocks = t.rowBytes / kBlockBytes;
    // Start one block before the end of the row.
    Addr start = static_cast<Addr>(row_blocks - 1) * kBlockBytes;
    ch.access(0, start, false, 2);
    EXPECT_EQ(ch.activates(), 2u);
}

TEST(DramChannel, CompletionMonotonicUnderLoad)
{
    DramChannel ch = makeChannel();
    Cycle last_start = 0;
    for (unsigned i = 0; i < 200; ++i) {
        Cycle when = i * 3; // arrival faster than service
        DramAccessResult r = ch.access(
            when, static_cast<Addr>(i) * 64 * 131, false, 1);
        EXPECT_GE(r.firstBlockReady, when);
        EXPECT_GE(r.done, r.firstBlockReady);
        last_start = when;
    }
    (void)last_start;
}

TEST(DramChannel, BacklogDrainsWhenIdle)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    // Saturate briefly.
    for (unsigned i = 0; i < 64; ++i)
        ch.access(0, static_cast<Addr>(i) * t.rowBytes, false, 1);
    // After a long idle period a fresh access sees cold latency
    // again: no permanent ratchet.
    Cycle late = 10'000'000;
    DramAccessResult r =
        ch.access(late, 1000 * t.rowBytes, false, 1);
    EXPECT_LE(r.firstBlockReady - late,
              t.tRP + t.tRCD + t.tCAS + t.tBurst + t.tFAW);
}

TEST(DramChannel, WritesDoNotStallLaterReadsExcessively)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    // Queue many writes to one conflicted bank.
    for (unsigned i = 0; i < 32; ++i)
        ch.access(i, static_cast<Addr>(i) * t.rowBytes *
                         t.numBanks,
                  true, 1);
    // A read to a different bank right after must not inherit the
    // whole write backlog (write-buffer semantics).
    DramAccessResult r = ch.access(40, t.rowBytes, false, 1);
    EXPECT_LT(r.firstBlockReady - 40, 10ULL * t.tRC);
}

TEST(DramChannel, EnergyAccounting)
{
    DramChannel ch = makeChannel();
    ch.access(0, 0x0, false, 2);   // 1 ACT, 2 read bursts
    ch.access(1000, 0x80, true, 1); // row hit, 1 write burst
    DramEnergyParams e = DramEnergyParams::offchipDdr3();
    EXPECT_DOUBLE_EQ(ch.actPreEnergyNj(), e.actPreNj);
    EXPECT_DOUBLE_EQ(ch.burstEnergyNj(),
                     2 * e.readBlockNj + e.writeBlockNj);
}

TEST(DramChannel, CompoundAccessSlowerThanPlainHit)
{
    DramChannel ch = makeChannel();
    // Loh-Hill compound: ACT + tag CAS + check + data CAS.
    DramAccessResult plain = ch.access(0, 0x0, false, 1);
    DramChannel ch2 = makeChannel();
    DramAccessResult comp = ch2.compoundAccess(0, 0x0, false);
    EXPECT_GT(comp.firstBlockReady, plain.firstBlockReady);
}

TEST(DramChannel, BytesTransferred)
{
    DramChannel ch = makeChannel();
    ch.access(0, 0x0, false, 4);
    ch.access(0, 0x0, true, 2);
    EXPECT_EQ(ch.bytesTransferred(), 6u * kBlockBytes);
}

/** tFAW: the fifth activate in a window must be delayed. */
TEST(DramChannel, FawLimitsActivateBursts)
{
    DramChannel ch = makeChannel();
    const auto &t = ch.timing();
    // Five activates to five different banks at the same instant.
    Cycle last_ready = 0;
    for (unsigned b = 0; b < 5; ++b) {
        DramAccessResult r = ch.access(
            0, static_cast<Addr>(b) * t.rowBytes, false, 1);
        last_ready = r.firstBlockReady;
    }
    // The fifth cannot be ready before tFAW has elapsed.
    EXPECT_GE(last_ready, t.tFAW);
}

} // namespace
} // namespace fpc

/** @file Unit tests for the Footprint History Table. */

#include <gtest/gtest.h>

#include "dramcache/fht.hh"

namespace fpc {
namespace {

FootprintHistoryTable::Config
tinyConfig(PredictorIndex idx = PredictorIndex::PcOffset,
           FhtTrain train = FhtTrain::Replace)
{
    FootprintHistoryTable::Config cfg;
    cfg.entries = 64;
    cfg.assoc = 4;
    cfg.index = idx;
    cfg.train = train;
    return cfg;
}

TEST(Fht, MissAllocatesWithTriggerBlock)
{
    FootprintHistoryTable fht(tinyConfig());
    auto r = fht.lookupOrAllocate(0x400, 5);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.trained);
    EXPECT_EQ(r.footprint.count(), 1u);
    EXPECT_TRUE(r.footprint.test(5));
    EXPECT_TRUE(r.ref.valid);
}

TEST(Fht, HitAfterAllocation)
{
    FootprintHistoryTable fht(tinyConfig());
    fht.lookupOrAllocate(0x400, 5);
    auto r = fht.lookupOrAllocate(0x400, 5);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.trained); // no feedback yet
    EXPECT_EQ(fht.hits(), 1u);
    EXPECT_EQ(fht.misses(), 1u);
}

TEST(Fht, TrainingReplacesFootprint)
{
    FootprintHistoryTable fht(tinyConfig());
    auto r = fht.lookupOrAllocate(0x400, 5);
    BlockBitmap demanded = BlockBitmap::firstN(8);
    fht.update(r.ref, demanded);
    auto r2 = fht.lookupOrAllocate(0x400, 5);
    EXPECT_TRUE(r2.hit);
    EXPECT_TRUE(r2.trained);
    EXPECT_EQ(r2.footprint, demanded);
}

TEST(Fht, ReplacePolicyKeepsMostRecent)
{
    FootprintHistoryTable fht(tinyConfig());
    auto r = fht.lookupOrAllocate(0x400, 5);
    fht.update(r.ref, BlockBitmap::firstN(8));
    r = fht.lookupOrAllocate(0x400, 5);
    fht.update(r.ref, BlockBitmap::single(30));
    auto r2 = fht.lookupOrAllocate(0x400, 5);
    EXPECT_EQ(r2.footprint.count(), 1u);
    EXPECT_TRUE(r2.footprint.test(30));
}

TEST(Fht, UnionPolicyAccumulates)
{
    FootprintHistoryTable fht(
        tinyConfig(PredictorIndex::PcOffset, FhtTrain::Union));
    auto r = fht.lookupOrAllocate(0x400, 5);
    fht.update(r.ref, BlockBitmap::firstN(4));
    r = fht.lookupOrAllocate(0x400, 5);
    fht.update(r.ref, BlockBitmap::single(30));
    auto r2 = fht.lookupOrAllocate(0x400, 5);
    // {0,1,2,3} U {30} U the initial trigger {5} = 6 blocks.
    EXPECT_EQ(r2.footprint.count(), 6u);
}

TEST(Fht, PcOffsetDistinguishesOffsets)
{
    FootprintHistoryTable fht(tinyConfig());
    auto a = fht.lookupOrAllocate(0x400, 1);
    fht.update(a.ref, BlockBitmap::firstN(2));
    // Same PC, different offset: a distinct key (alignment case).
    auto b = fht.lookupOrAllocate(0x400, 9);
    EXPECT_FALSE(b.hit);
}

TEST(Fht, PcOnlyConflatesOffsets)
{
    FootprintHistoryTable fht(tinyConfig(PredictorIndex::PcOnly));
    fht.lookupOrAllocate(0x400, 1);
    auto b = fht.lookupOrAllocate(0x400, 9);
    EXPECT_TRUE(b.hit); // offset ignored
}

TEST(Fht, OffsetOnlyConflatesPcs)
{
    FootprintHistoryTable fht(
        tinyConfig(PredictorIndex::OffsetOnly));
    fht.lookupOrAllocate(0x400, 1);
    auto b = fht.lookupOrAllocate(0x999, 1);
    EXPECT_TRUE(b.hit); // PC ignored
}

TEST(Fht, StaleGenerationDropsFeedback)
{
    // Fill one set until the first entry is evicted, then deliver
    // feedback through the stale ref: it must be dropped (§4.2).
    FootprintHistoryTable::Config cfg = tinyConfig();
    FootprintHistoryTable fht(cfg);
    auto first = fht.lookupOrAllocate(0x1000, 0);
    // Thrash with many distinct keys to force eviction.
    for (unsigned i = 1; i < 2000; ++i)
        fht.lookupOrAllocate(0x1000 + i * 64, i % 32);
    ASSERT_GT(fht.evictions(), 0u);
    const std::uint64_t stale_before = fht.staleUpdates();
    fht.update(first.ref, BlockBitmap::firstN(32));
    // Either the entry survived (unlikely with 2000 keys over 64
    // entries) or the update was detected stale.
    auto again = fht.peek(0x1000, 0);
    if (!again.hit)
        EXPECT_EQ(fht.staleUpdates(), stale_before + 1);
}

TEST(Fht, InvalidRefIgnored)
{
    FootprintHistoryTable fht(tinyConfig());
    FhtRef invalid;
    fht.update(invalid, BlockBitmap::firstN(4)); // no crash
    EXPECT_EQ(fht.staleUpdates(), 0u);
}

TEST(Fht, EmptyFeedbackIgnored)
{
    FootprintHistoryTable fht(tinyConfig());
    auto r = fht.lookupOrAllocate(0x400, 5);
    fht.update(r.ref, BlockBitmap{});
    auto r2 = fht.peek(0x400, 5);
    EXPECT_TRUE(r2.hit);
    EXPECT_FALSE(r2.trained); // empty feedback does not train
    EXPECT_EQ(r2.footprint.count(), 1u);
}

TEST(Fht, PeekDoesNotAllocate)
{
    FootprintHistoryTable fht(tinyConfig());
    EXPECT_FALSE(fht.peek(0x1, 1).hit);
    EXPECT_EQ(fht.misses(), 0u);
    EXPECT_FALSE(fht.lookupOrAllocate(0x1, 1).hit);
    EXPECT_TRUE(fht.peek(0x1, 1).hit);
}

TEST(Fht, StorageMatchesPaper)
{
    // §6.4: 16K entries = 144KB. Allow modest modeling slack.
    FootprintHistoryTable::Config cfg;
    cfg.entries = 16 * 1024;
    cfg.assoc = 8;
    FootprintHistoryTable fht(cfg);
    const double kb =
        static_cast<double>(fht.storageBits(32)) / (8.0 * 1024);
    EXPECT_GT(kb, 100.0);
    EXPECT_LT(kb, 200.0);
}

/** LRU within a set: re-touched keys survive thrash. */
TEST(Fht, LruKeepsHotKeys)
{
    FootprintHistoryTable fht(tinyConfig());
    fht.lookupOrAllocate(0xAAAA0000, 0);
    for (unsigned i = 0; i < 500; ++i) {
        fht.lookupOrAllocate(0xAAAA0000, 0);     // keep hot
        fht.lookupOrAllocate(0x1000 + i * 64, 3); // churn
    }
    EXPECT_TRUE(fht.peek(0xAAAA0000, 0).hit);
}

} // namespace
} // namespace fpc

/** @file Unit tests for the deterministic RNG and Zipf sampler. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace fpc {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ |= (a.next() != b.next());
    EXPECT_TRUE(differ);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(19);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Zipf, SingleElement)
{
    Rng r(1);
    ZipfSampler z(1, 1.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(z(r), 0u);
}

TEST(Zipf, UniformWhenExponentZero)
{
    Rng r(23);
    ZipfSampler z(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z(r)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
}

TEST(Zipf, InRange)
{
    Rng r(29);
    ZipfSampler z(1000, 0.8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z(r), 1000u);
}

/** Head items must be sampled more often than tail items. */
class ZipfSkew : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkew, HeadBeatsTail)
{
    Rng r(31);
    const std::uint64_t n = 10000;
    ZipfSampler z(n, GetParam());
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 200000; ++i) {
        std::uint64_t v = z(r);
        if (v < n / 10)
            ++head;
        if (v >= 9 * n / 10)
            ++tail;
    }
    EXPECT_GT(head, tail);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSkew,
                         ::testing::Values(0.3, 0.6, 0.9, 1.0,
                                           1.2));

TEST(Mix64, DifferentInputsScatter)
{
    // A weak avalanche check: neighbours must not collide.
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_NE(mix64(i), mix64(i + 1));
}

} // namespace
} // namespace fpc

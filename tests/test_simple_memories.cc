/** @file Unit tests for the baseline and ideal memory systems. */

#include <gtest/gtest.h>

#include "dramcache/simple_memories.hh"

namespace fpc {
namespace {

MemRequest
req(Addr a)
{
    MemRequest r;
    r.paddr = a;
    r.op = MemOp::Read;
    return r;
}

TEST(NoCacheMemory, AllAccessesGoOffchip)
{
    DramSystem off(DramSystem::Config::offchipPod());
    NoCacheMemory mem(off);
    MemSystemResult r = mem.access(100, req(0x1000));
    EXPECT_FALSE(r.cacheHit);
    EXPECT_GT(r.doneAt, 100u);
    EXPECT_EQ(off.totalBlocksRead(), 1u);
    EXPECT_EQ(mem.demandAccesses(), 1u);
    EXPECT_EQ(mem.demandHits(), 0u);
    EXPECT_DOUBLE_EQ(mem.missRatio(), 1.0);
}

TEST(NoCacheMemory, WritebacksGoOffchip)
{
    DramSystem off(DramSystem::Config::offchipPod());
    NoCacheMemory mem(off);
    mem.writeback(100, 0x2000);
    EXPECT_EQ(off.totalBlocksWritten(), 1u);
}

TEST(IdealCache, EverythingHits)
{
    DramSystem off(DramSystem::Config::offchipPod());
    DramSystem stk(DramSystem::Config::stackedPod());
    IdealCache mem(stk, 256ULL << 20);
    for (unsigned i = 0; i < 10; ++i) {
        MemSystemResult r =
            mem.access(i * 1000, req(0x123400000ULL + i * 64));
        EXPECT_TRUE(r.cacheHit);
    }
    EXPECT_DOUBLE_EQ(mem.missRatio(), 0.0);
    EXPECT_EQ(stk.totalBlocksRead(), 10u);
    EXPECT_EQ(off.totalBytes(), 0u); // never off chip
}

TEST(IdealCache, FoldsAddressesIntoCapacity)
{
    DramSystem stk(DramSystem::Config::stackedPod());
    IdealCache mem(stk, 1ULL << 20);
    // Two addresses 1MB apart fold to the same stacked location:
    // the second access row-hits.
    mem.access(0, req(0x40));
    mem.access(100000, req(0x40 + (1ULL << 20)));
    EXPECT_EQ(stk.totalActivates(), 1u);
    EXPECT_EQ(stk.totalRowHits(), 1u);
}

TEST(IdealCache, WritebacksStayOnChip)
{
    DramSystem stk(DramSystem::Config::stackedPod());
    IdealCache mem(stk, 1ULL << 20);
    mem.writeback(0, 0x1000);
    EXPECT_EQ(stk.totalBlocksWritten(), 1u);
}

TEST(IdealCache, FasterThanOffchip)
{
    DramSystem off(DramSystem::Config::offchipPod());
    DramSystem stk(DramSystem::Config::stackedPod());
    NoCacheMemory base(off);
    IdealCache ideal(stk, 256ULL << 20);
    Cycle base_done = base.access(0, req(0x1000)).doneAt;
    Cycle ideal_done = ideal.access(0, req(0x1000)).doneAt;
    EXPECT_LT(ideal_done, base_done);
}

} // namespace
} // namespace fpc

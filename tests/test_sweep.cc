/**
 * @file
 * Sweep subsystem tests: grid expansion, per-point seed
 * determinism (stable under registry reordering, independent of
 * shard count), bit-identical metrics between --jobs 1 and
 * --jobs 8, and merged-report completeness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "experiments/experiments.hh"
#include "sim/registry.hh"
#include "sim/sweep.hh"

namespace fpc {
namespace {

using fpcbench::registerAllExperiments;

/** A small but non-trivial batch: two designs, two workloads. */
std::vector<ExperimentPoint>
smallBatch()
{
    SweepSpec spec;
    spec.experiment = "unit";
    spec.workloads = {WorkloadKind::WebSearch,
                      WorkloadKind::DataServing};
    spec.designs = {"baseline", "footprint"};
    spec.capacitiesMb = {64};
    spec.scale = 0.02;
    return spec.expand();
}

void
expectMetricsIdentical(const PointResult &a, const PointResult &b,
                       const std::string &key)
{
    const RunMetrics &x = a.metrics;
    const RunMetrics &y = b.metrics;
    EXPECT_EQ(x.instructions, y.instructions) << key;
    EXPECT_EQ(x.cycles, y.cycles) << key;
    EXPECT_EQ(x.traceRecords, y.traceRecords) << key;
    EXPECT_EQ(x.llcMisses, y.llcMisses) << key;
    EXPECT_EQ(x.demandAccesses, y.demandAccesses) << key;
    EXPECT_EQ(x.demandHits, y.demandHits) << key;
    EXPECT_EQ(x.memLatencyCycles, y.memLatencyCycles) << key;
    EXPECT_EQ(x.offchipBytes, y.offchipBytes) << key;
    EXPECT_EQ(x.stackedBytes, y.stackedBytes) << key;
    EXPECT_EQ(x.offchipActs, y.offchipActs) << key;
    EXPECT_EQ(x.stackedActs, y.stackedActs) << key;
    EXPECT_EQ(a.covered, b.covered) << key;
    EXPECT_EQ(a.underpred, b.underpred) << key;
    EXPECT_EQ(a.overpred, b.overpred) << key;
    EXPECT_EQ(a.trigMisses, b.trigMisses) << key;
    EXPECT_EQ(a.singletonBypasses, b.singletonBypasses) << key;
    EXPECT_EQ(a.densityBuckets, b.densityBuckets) << key;
}

TEST(SweepSpec, ExpandsFullCrossProduct)
{
    SweepSpec spec;
    spec.experiment = "x";
    spec.workloads = {WorkloadKind::WebSearch,
                      WorkloadKind::MapReduce};
    spec.designs = {"block", "footprint"};
    spec.capacitiesMb = {64, 256};
    spec.pageBytes = {1024, 2048};
    std::vector<ExperimentPoint> points = spec.expand();
    EXPECT_EQ(points.size(), 2u * 2 * 2 * 2);

    // Keys are unique.
    std::vector<std::string> keys;
    for (const ExperimentPoint &p : points)
        keys.push_back(p.key());
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());

    // Fixed nested order: workload outermost, then capacity,
    // then design, then page size.
    EXPECT_EQ(points[0].workload, WorkloadKind::WebSearch);
    EXPECT_EQ(points[0].cfg.capacityMb, 64u);
    EXPECT_EQ(points[0].cfg.design, "block");
    EXPECT_EQ(points[0].cfg.pageBytes, 1024u);
    EXPECT_EQ(points[1].cfg.pageBytes, 2048u);
    EXPECT_EQ(points[2].cfg.design, "footprint");
    EXPECT_EQ(points[8].workload, WorkloadKind::MapReduce);
}

TEST(SweepSpec, LabelsEncodeNonDefaultKnobs)
{
    Experiment::Config cfg;
    cfg.design = "footprint";
    cfg.capacityMb = 256;
    EXPECT_EQ(standardLabel(WorkloadKind::WebSearch, cfg),
              "WebSearch/footprint/256MB/2048B");
    cfg.singletonOptimization = false;
    cfg.fhtTrain = FhtTrain::Union;
    EXPECT_EQ(
        standardLabel(WorkloadKind::WebSearch, cfg),
        "WebSearch/footprint/256MB/2048B/nosingleton/train=union");
}

TEST(SweepSeed, DerivedFromTraceIdentityOnly)
{
    ExperimentPoint a;
    a.experiment = "fig05";
    a.workload = WorkloadKind::WebSearch;
    a.cfg.design = "block";
    a.cfg.capacityMb = 64;
    a.label = standardLabel(a.workload, a.cfg);

    // Same trace identity, different organization/capacity/
    // experiment: the same trace replays (paired comparison).
    ExperimentPoint b = a;
    b.experiment = "fig06";
    b.cfg.design = "footprint";
    b.cfg.capacityMb = 512;
    b.label = standardLabel(b.workload, b.cfg);
    EXPECT_EQ(a.traceSeed(), b.traceSeed());

    // Different workload, page size or base seed: new trace.
    ExperimentPoint c = a;
    c.workload = WorkloadKind::MapReduce;
    EXPECT_NE(a.traceSeed(), c.traceSeed());
    ExperimentPoint d = a;
    d.cfg.pageBytes = 4096;
    EXPECT_NE(a.traceSeed(), d.traceSeed());
    ExperimentPoint e = a;
    e.baseSeed = 43;
    EXPECT_NE(a.traceSeed(), e.traceSeed());
}

TEST(SweepSeed, StableUnderRegistryReordering)
{
    // The same experiments registered in opposite orders must
    // expand to identical per-point seeds: seeds derive from the
    // point itself, never from registry position.
    SweepOptions opts;
    opts.scale = 0.02;
    opts.workloadFilter = "WebSearch";

    ExperimentRegistry forward, backward;
    registerAllExperiments(forward);
    for (auto it = forward.all().rbegin();
         it != forward.all().rend(); ++it)
        backward.add(*it);

    std::map<std::string, std::uint64_t> seeds_fwd, seeds_bwd;
    for (const ExperimentDef &def : forward.all())
        for (const ExperimentPoint &p : def.build(opts))
            seeds_fwd[p.key()] = p.traceSeed();
    for (const ExperimentDef &def : backward.all())
        for (const ExperimentPoint &p : def.build(opts))
            seeds_bwd[p.key()] = p.traceSeed();

    EXPECT_FALSE(seeds_fwd.empty());
    EXPECT_EQ(seeds_fwd, seeds_bwd);
}

TEST(SweepRunner, JobsOneAndJobsEightBitIdentical)
{
    const std::vector<ExperimentPoint> points = smallBatch();
    const std::vector<PointResult> serial =
        SweepRunner(1).run(points);
    const std::vector<PointResult> sharded =
        SweepRunner(8).run(points);
    ASSERT_EQ(serial.size(), points.size());
    ASSERT_EQ(sharded.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        expectMetricsIdentical(serial[i], sharded[i],
                               points[i].key());

    // The rendered report is byte-identical too: no execution
    // detail (like the job count) leaks into the artifact.
    SweepOptions opts;
    opts.scale = 0.02;
    ExperimentRun a{"unit", "t", points, serial};
    ExperimentRun b{"unit", "t", points, sharded};
    opts.jobs = 1;
    const std::string json_a = renderSweepJson(opts, {a});
    opts.jobs = 8;
    const std::string json_b = renderSweepJson(opts, {b});
    EXPECT_EQ(json_a, json_b);
}

TEST(SweepRunner, CacheOnAndOffBitIdentical)
{
    // The trace/warmup cache is a pure execution optimization:
    // metrics and the rendered report must not change with it.
    const std::vector<ExperimentPoint> points = smallBatch();
    TraceCacheConfig off;
    off.enabled = false;
    SweepRunner cached(2);
    SweepRunner uncached(2, off);
    const std::vector<PointResult> a = cached.run(points);
    const std::vector<PointResult> b = uncached.run(points);
    for (std::size_t i = 0; i < points.size(); ++i)
        expectMetricsIdentical(a[i], b[i], points[i].key());

    // The cache actually engaged on the cached run...
    EXPECT_GT(cached.lastCacheStats().hits +
                  cached.lastCacheStats().misses,
              0u);
    EXPECT_EQ(uncached.lastCacheStats().hits, 0u);

    // ...and the artifact replay kicked in for standard points.
    for (const PointResult &r : a)
        EXPECT_TRUE(r.timing.replayedTrace);
    for (const PointResult &r : b)
        EXPECT_FALSE(r.timing.replayedTrace);

    SweepOptions opts;
    opts.scale = 0.02;
    ExperimentRun ra{"unit", "t", points, a};
    ExperimentRun rb{"unit", "t", points, b};
    opts.traceCache = true;
    const std::string json_a = renderSweepJson(opts, {ra});
    opts.traceCache = false;
    const std::string json_b = renderSweepJson(opts, {rb});
    EXPECT_EQ(json_a, json_b);
    EXPECT_EQ(json_a.find("timing"), std::string::npos);
}

TEST(SweepRunner, FrontierJsonIdenticalAcrossCacheModes)
{
    // The frontier experiment is the trace cache's prime target:
    // seven designs share each workload's trace and warm window.
    // The merged JSON must stay byte-identical with the cache on
    // (shared arena + warmup artifacts) and off.
    ExperimentRegistry reg;
    registerAllExperiments(reg);
    const ExperimentDef *def = reg.find("frontier");
    ASSERT_NE(def, nullptr);

    SweepOptions opts;
    opts.scale = 0.01;
    opts.workloadFilter = "WebSearch";
    ExperimentRun run;
    run.name = def->name;
    run.title = def->title;
    run.points = def->build(opts);
    ASSERT_EQ(run.points.size(), 7u);

    TraceCacheConfig off;
    off.enabled = false;
    ExperimentRun cached = run;
    cached.results = SweepRunner(4).run(run.points);
    ExperimentRun uncached = run;
    uncached.results = SweepRunner(4, off).run(run.points);

    opts.traceCache = true;
    const std::string json_on =
        renderSweepJson(opts, {cached});
    opts.traceCache = false;
    const std::string json_off =
        renderSweepJson(opts, {uncached});
    EXPECT_EQ(json_on, json_off);
}

TEST(SweepRunner, TinyBudgetEvictsButStaysCorrect)
{
    // A one-byte budget forces eviction after every release; the
    // sweep must still produce identical results (the cache
    // degrades to regeneration, never to wrong data).
    const std::vector<ExperimentPoint> points = smallBatch();
    TraceCacheConfig tiny;
    tiny.budgetBytes = 1;
    SweepRunner constrained(2, tiny);
    SweepRunner roomy(2);
    const std::vector<PointResult> a = constrained.run(points);
    const std::vector<PointResult> b = roomy.run(points);
    for (std::size_t i = 0; i < points.size(); ++i)
        expectMetricsIdentical(a[i], b[i], points[i].key());
}

TEST(SweepJson, TimingEmittedOnlyOnExplicitRequest)
{
    const std::vector<ExperimentPoint> points = smallBatch();
    std::vector<PointResult> results(points.size());
    results[0].timing.traceSeconds = 1.25;
    results[0].timing.replayedTrace = true;
    ExperimentRun run{"unit", "t", points, results};

    SweepOptions opts;
    EXPECT_EQ(renderSweepJson(opts, {run}).find("timing"),
              std::string::npos);

    opts.time = true;
    EXPECT_NE(renderSweepJson(opts, {run}).find("\"timing\""),
              std::string::npos);

    // --time-out keeps the merged report clean; the breakdown
    // goes to the standalone artifact instead.
    opts.timeOut = "timing.json";
    EXPECT_EQ(renderSweepJson(opts, {run}).find("timing"),
              std::string::npos);
    const std::string timing_json =
        renderTimingJson(opts, {run}, TraceCacheStats{});
    EXPECT_NE(timing_json.find("\"trace_s\": 1.2500"),
              std::string::npos);
    EXPECT_NE(timing_json.find("sweep_timing"),
              std::string::npos);
    const std::string report =
        renderTimingReport({run}, TraceCacheStats{});
    EXPECT_NE(report.find("unit/"), std::string::npos);
    EXPECT_NE(report.find("trace cache:"), std::string::npos);
}

TEST(SweepRunner, ResultsIndependentOfBatchOrder)
{
    // Reversing the batch must permute, not perturb, results —
    // the other half of schedule-independence.
    std::vector<ExperimentPoint> points = smallBatch();
    std::vector<ExperimentPoint> reversed(points.rbegin(),
                                          points.rend());
    const std::vector<PointResult> a =
        SweepRunner(2).run(points);
    const std::vector<PointResult> b =
        SweepRunner(2).run(reversed);
    for (std::size_t i = 0; i < points.size(); ++i)
        expectMetricsIdentical(a[i],
                               b[points.size() - 1 - i],
                               points[i].key());
}

TEST(SweepRunner, PointFailurePropagatesWithKey)
{
    // A throwing point must surface as a catchable error naming
    // the point — never std::terminate from a worker thread —
    // and must not suppress the other points' execution.
    std::vector<ExperimentPoint> points;
    ExperimentPoint bad;
    bad.experiment = "unit";
    bad.label = "explodes";
    bad.custom = [](const ExperimentPoint &) -> PointResult {
        throw std::runtime_error("boom");
    };
    points.push_back(bad);
    try {
        SweepRunner(4).run(points);
        FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unit/explodes"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
    }
}

TEST(SweepRunner, RejectsDuplicateKeys)
{
    std::vector<ExperimentPoint> points = smallBatch();
    points.push_back(points.front());
    EXPECT_THROW(SweepRunner(1).run(points),
                 std::runtime_error);
}

TEST(Registry, AllPaperExperimentsRegistered)
{
    ExperimentRegistry reg;
    registerAllExperiments(reg);
    const std::vector<std::string> expected = {
        "fig01",  "fig04",  "fig05",
        "fig06",  "fig07",  "fig08",
        "fig09",  "fig10",  "fig11",
        "fig12",  "table1", "table4",
        "ablation_capacity", "ablation_predictor", "frontier",
        "colocation", "sampling_validation", "introspection"};
    EXPECT_EQ(reg.names(), expected);
    for (const std::string &name : expected)
        EXPECT_NE(reg.find(name), nullptr) << name;
}

TEST(Registry, RejectsDuplicateNames)
{
    ExperimentRegistry reg;
    registerAllExperiments(reg);
    EXPECT_THROW(fpcbench::registerFig06(reg),
                 std::runtime_error);
}

TEST(Registry, EveryBuilderExpandsUniqueKeys)
{
    ExperimentRegistry reg;
    registerAllExperiments(reg);
    SweepOptions opts;
    std::vector<std::string> keys;
    for (const ExperimentDef &def : reg.all())
        for (const ExperimentPoint &p : def.build(opts))
            keys.push_back(p.key());
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(SweepJson, MergedReportContainsEveryExperiment)
{
    ExperimentRegistry reg;
    registerAllExperiments(reg);
    SweepOptions opts;

    // Render with expanded (unrun) points: the completeness gate
    // only needs the report structure, not simulation output.
    std::vector<ExperimentRun> runs;
    for (const ExperimentDef &def : reg.all()) {
        ExperimentRun run;
        run.name = def.name;
        run.title = def.title;
        run.points = def.build(opts);
        run.results.resize(run.points.size());
        runs.push_back(std::move(run));
    }
    const std::string json = renderSweepJson(opts, runs);
    for (const std::string &name : reg.names())
        EXPECT_TRUE(sweepJsonHasExperiment(json, name)) << name;
    EXPECT_FALSE(sweepJsonHasExperiment(json, "fig99"));
}

} // namespace
} // namespace fpc

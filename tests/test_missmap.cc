/** @file Unit tests for the MissMap. */

#include <gtest/gtest.h>

#include "dramcache/missmap.hh"

namespace fpc {
namespace {

MissMap::Config
tinyConfig()
{
    MissMap::Config cfg;
    cfg.entries = 32;
    cfg.assoc = 4;
    cfg.segmentBytes = 4096;
    return cfg;
}

TEST(MissMap, AbsentByDefault)
{
    MissMap mm(tinyConfig());
    EXPECT_FALSE(mm.present(0x1000));
}

TEST(MissMap, SetThenPresent)
{
    MissMap mm(tinyConfig());
    MissMap::Victim v;
    mm.setBit(0x1000, v);
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(mm.present(0x1000));
    // Other blocks of the segment remain absent.
    EXPECT_FALSE(mm.present(0x1040));
}

TEST(MissMap, ClearBit)
{
    MissMap mm(tinyConfig());
    MissMap::Victim v;
    mm.setBit(0x1000, v);
    mm.setBit(0x1040, v);
    mm.clearBit(0x1000);
    EXPECT_FALSE(mm.present(0x1000));
    EXPECT_TRUE(mm.present(0x1040));
}

TEST(MissMap, EmptyEntryFreed)
{
    MissMap mm(tinyConfig());
    MissMap::Victim v;
    mm.setBit(0x1000, v);
    mm.clearBit(0x1000);
    // Re-setting must not report the segment as victim of itself;
    // the freed entry is reused silently.
    mm.setBit(0x1000, v);
    EXPECT_FALSE(v.valid);
}

TEST(MissMap, SegmentSharing)
{
    MissMap mm(tinyConfig());
    MissMap::Victim v;
    // 4KB segment = 64 blocks; both blocks in one entry.
    mm.setBit(0x2000, v);
    mm.setBit(0x2fc0, v);
    EXPECT_TRUE(mm.present(0x2000));
    EXPECT_TRUE(mm.present(0x2fc0));
}

TEST(MissMap, EvictionReturnsTrackedBlocks)
{
    MissMap mm(tinyConfig());
    MissMap::Victim v;
    mm.setBit(0x0, v);
    mm.setBit(0x40, v);
    // Thrash until that segment is displaced.
    std::uint64_t evictions = 0;
    for (Addr seg = 1; seg < 4096 && !evictions; ++seg) {
        mm.setBit(seg * 4096, v);
        if (v.valid && v.segmentId == 0) {
            EXPECT_EQ(v.presentBlocks.count(), 2u);
            EXPECT_TRUE(v.presentBlocks.test(0));
            EXPECT_TRUE(v.presentBlocks.test(1));
            ++evictions;
        }
    }
    EXPECT_EQ(evictions, 1u);
    EXPECT_GT(mm.entryEvictions(), 0u);
    EXPECT_FALSE(mm.present(0x0));
}

TEST(MissMap, LruKeepsHotSegments)
{
    MissMap mm(tinyConfig());
    MissMap::Victim v;
    mm.setBit(0x0, v);
    for (unsigned i = 1; i < 500; ++i) {
        mm.setBit(0x0, v); // keep segment 0 hot
        mm.setBit(static_cast<Addr>(i) * 4096, v);
        EXPECT_TRUE(mm.present(0x0));
    }
}

TEST(MissMap, StorageMatchesTable4)
{
    // Table 4: 192K entries ~ 1.95MB.
    MissMap::Config cfg;
    cfg.entries = 192 * 1024;
    cfg.assoc = 24;
    MissMap mm(cfg);
    const double mb =
        static_cast<double>(mm.storageBits(40)) /
        (8.0 * 1024 * 1024);
    EXPECT_GT(mb, 1.5);
    EXPECT_LT(mb, 2.5);
}

} // namespace
} // namespace fpc

/** @file Unit tests for the L1/L2 pod cache hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace fpc {
namespace {

CacheHierarchy::Config
tinyConfig(unsigned cores = 2)
{
    CacheHierarchy::Config cfg;
    cfg.numCores = cores;
    cfg.l1.sizeBytes = 512; // 8 lines
    cfg.l1.assoc = 2;
    cfg.l2.sizeBytes = 2048; // 32 lines
    cfg.l2.assoc = 2;
    return cfg;
}

MemRequest
req(Addr a, MemOp op = MemOp::Read, unsigned core = 0)
{
    MemRequest r;
    r.paddr = a;
    r.op = op;
    r.coreId = static_cast<std::uint16_t>(core);
    return r;
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    CacheHierarchy h(tinyConfig());
    HierarchyOutcome o = h.access(req(0x10000));
    EXPECT_FALSE(o.l1Hit);
    EXPECT_FALSE(o.l2Hit);
    EXPECT_TRUE(o.llcMiss());
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(tinyConfig());
    h.access(req(0x10000));
    HierarchyOutcome o = h.access(req(0x10000));
    EXPECT_TRUE(o.l1Hit);
}

TEST(Hierarchy, CrossCoreHitsL2)
{
    CacheHierarchy h(tinyConfig());
    h.access(req(0x10000, MemOp::Read, 0));
    HierarchyOutcome o = h.access(req(0x10000, MemOp::Read, 1));
    EXPECT_FALSE(o.l1Hit); // core 1's private L1 misses
    EXPECT_TRUE(o.l2Hit);  // shared L2 hits
}

TEST(Hierarchy, DirtyL2EvictionEmitsWriteback)
{
    CacheHierarchy h(tinyConfig(1));
    // Write a block, then stream enough distinct blocks through
    // the same L2 set to evict it.
    h.access(req(0x0, MemOp::Write));
    unsigned wb = 0;
    for (unsigned i = 1; i < 64; ++i) {
        HierarchyOutcome o =
            h.access(req(static_cast<Addr>(i) * 2048 * 64));
        for (unsigned k = 0; k < o.numWritebacks; ++k) {
            if (o.writebackAddr[k] == 0x0)
                ++wb;
        }
    }
    EXPECT_EQ(wb, 1u);
    EXPECT_GE(h.llcWritebacks(), 1u);
}

TEST(Hierarchy, CleanEvictionSilent)
{
    CacheHierarchy h(tinyConfig(1));
    h.access(req(0x0, MemOp::Read));
    std::uint64_t before = h.llcWritebacks();
    // Evict with clean traffic only: no read-only line may produce
    // a writeback.
    for (unsigned i = 1; i < 64; ++i)
        h.access(req(static_cast<Addr>(i) * 2048 * 64));
    EXPECT_EQ(h.llcWritebacks(), before);
}

TEST(Hierarchy, InclusionBackInvalidatesL1)
{
    CacheHierarchy h(tinyConfig(1));
    h.access(req(0x0));
    // Evict 0x0 from L2 via set pressure; afterwards the L1 copy
    // must be gone too: re-access misses both levels.
    for (unsigned i = 1; i < 64; ++i)
        h.access(req(static_cast<Addr>(i) * 2048 * 64));
    HierarchyOutcome o = h.access(req(0x0));
    EXPECT_TRUE(o.llcMiss());
}

TEST(Hierarchy, DirtyL1CopySurvivesAsWriteback)
{
    // A block dirty in L1 but clean in L2 must still produce a
    // memory writeback when the L2 line is evicted (coherence at
    // the L2, §7).
    CacheHierarchy h(tinyConfig(1));
    h.access(req(0x0, MemOp::Write)); // dirty in L1 only
    bool saw_wb = false;
    for (unsigned i = 1; i < 64; ++i) {
        HierarchyOutcome o =
            h.access(req(static_cast<Addr>(i) * 2048 * 64));
        for (unsigned k = 0; k < o.numWritebacks; ++k)
            saw_wb |= (o.writebackAddr[k] == 0x0);
    }
    EXPECT_TRUE(saw_wb);
}

TEST(Hierarchy, StatsAccumulate)
{
    CacheHierarchy h(tinyConfig());
    h.access(req(0x10000));
    h.access(req(0x10000));
    EXPECT_EQ(h.l1Misses(), 1u);
    EXPECT_EQ(h.l1Hits(), 1u);
    EXPECT_EQ(h.l2Misses(), 1u);
}

TEST(Hierarchy, ScaleOutPodDefaults)
{
    CacheHierarchy::Config cfg =
        CacheHierarchy::Config::scaleOutPod();
    EXPECT_EQ(cfg.numCores, 16u);
    EXPECT_EQ(cfg.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.l2.sizeBytes, 4ULL * 1024 * 1024);
    EXPECT_EQ(cfg.l2.assoc, 16u);
}

} // namespace
} // namespace fpc

/**
 * @file
 * Design-subsystem tests: registry semantics (duplicate-name
 * rejection, unknown-name error, factory round-trip), the
 * parameter bag, Alloy/Banshee functional-vs-timed state
 * bit-identity, and the frontier experiment's same-trace pairing
 * across designs.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

#include "dramcache/alloy_cache.hh"
#include "dramcache/banshee_cache.hh"
#include "dramcache/design_registry.hh"
#include "experiments/experiments.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "workload/generator.hh"

namespace fpc {
namespace {

TEST(DesignRegistry, AllBuiltinDesignsRegistered)
{
    DesignRegistry reg;
    registerAllDesigns(reg);
    const std::vector<std::string> expected = {
        "baseline", "block", "page",   "footprint",
        "ideal",    "alloy", "banshee"};
    EXPECT_EQ(reg.names(), expected);
    // The process-wide instance comes pre-populated.
    EXPECT_EQ(DesignRegistry::instance().names(), expected);
}

TEST(DesignRegistry, RejectsDuplicateNames)
{
    DesignRegistry reg;
    registerAllDesigns(reg);
    EXPECT_THROW(registerAlloyDesign(reg), std::runtime_error);
    EXPECT_THROW(registerPaperDesigns(reg), std::runtime_error);
}

TEST(DesignRegistry, UnknownNameIsAnError)
{
    EXPECT_EQ(DesignRegistry::instance().find("chop"), nullptr);
    try {
        DesignRegistry::instance().at("chop");
        FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error &e) {
        // The error names the unknown design and the known ones.
        EXPECT_NE(std::string(e.what()).find("chop"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("footprint"),
                  std::string::npos);
    }

    // An Experiment over an unknown design fails the same way.
    WorkloadSpec spec = makeWorkload(WorkloadKind::WebSearch);
    SyntheticTraceSource trace(spec);
    Experiment::Config cfg;
    cfg.design = "chop";
    EXPECT_THROW(Experiment exp(cfg, trace), std::runtime_error);
}

TEST(DesignRegistry, FactoryRoundTrip)
{
    // Every registered design builds through its factory into a
    // memory system that reports the registry name back.
    for (const std::string &name :
         DesignRegistry::instance().names()) {
        WorkloadSpec spec = makeWorkload(WorkloadKind::WebSearch);
        SyntheticTraceSource trace(spec);
        Experiment::Config cfg;
        cfg.design = name;
        cfg.capacityMb = 64;
        Experiment exp(cfg, trace);
        EXPECT_EQ(exp.memory().designName(), name);
        RunMetrics m = exp.run(0, 20'000);
        EXPECT_EQ(m.traceRecords, 20'000u) << name;
        EXPECT_GT(m.ipc(), 0.0) << name;
    }
}

TEST(DesignParams, TypedGettersAndLabelSuffix)
{
    DesignParams p;
    EXPECT_TRUE(p.empty());
    p.set("banshee.assoc", "8");
    p.set("alloy.predictor", "false");
    p.set("x.ratio", "0.5");
    EXPECT_TRUE(p.has("banshee.assoc"));
    EXPECT_FALSE(p.has("banshee.sample_shift"));
    EXPECT_EQ(p.getU64("banshee.assoc", 4), 8u);
    EXPECT_EQ(p.getU64("absent", 4), 4u);
    EXPECT_FALSE(p.getBool("alloy.predictor", true));
    EXPECT_DOUBLE_EQ(p.getDouble("x.ratio", 0.0), 0.5);
    EXPECT_THROW(p.getBool("x.ratio", true), std::runtime_error);
    p.set("banshee.assoc", "2"); // overwrite, no duplicate entry
    EXPECT_EQ(p.getU64("banshee.assoc", 4), 2u);
    EXPECT_EQ(p.entries().size(), 3u);
    // Unparseable and partially-numeric values are errors, not
    // silent zeros/truncations.
    p.set("bad.int", "four");
    p.set("bad.suffix", "64K");
    EXPECT_THROW(p.getU64("bad.int", 1), std::runtime_error);
    EXPECT_THROW(p.getU64("bad.suffix", 1), std::runtime_error);
    EXPECT_THROW(p.getDouble("bad.int", 1.0),
                 std::runtime_error);

    // Params suffix the sweep label, keeping variants distinct.
    Experiment::Config cfg;
    cfg.design = "banshee";
    const std::string plain =
        standardLabel(WorkloadKind::WebSearch, cfg);
    cfg.params.set("banshee.assoc", "8");
    const std::string tuned =
        standardLabel(WorkloadKind::WebSearch, cfg);
    EXPECT_NE(plain, tuned);
    EXPECT_NE(tuned.find("banshee.assoc=8"), std::string::npos);
}

TEST(DesignParams, ReachTheFactories)
{
    WorkloadSpec spec = makeWorkload(WorkloadKind::WebSearch);
    SyntheticTraceSource trace(spec);
    Experiment::Config cfg;
    cfg.design = "banshee";
    cfg.capacityMb = 64;
    cfg.params.set("banshee.assoc", "8");
    cfg.params.set("banshee.sample_shift", "2");
    Experiment exp(cfg, trace);
    auto *banshee =
        dynamic_cast<BansheeCache *>(&exp.memory());
    ASSERT_NE(banshee, nullptr);
    EXPECT_EQ(banshee->config().assoc, 8u);
    EXPECT_EQ(banshee->config().sampleShift, 2u);
}

TEST(Designs, Table4LatenciesByName)
{
    EXPECT_EQ(tagLatencyCycles("footprint", 256), 9u);
    EXPECT_EQ(tagLatencyCycles("page", 256), 6u);
    // Designs without an SRAM page tag array have none.
    EXPECT_EQ(tagLatencyCycles("alloy", 256), 0u);
    EXPECT_EQ(tagLatencyCycles("baseline", 256), 0u);
}

/* ---------------- functional/timed bit-identity ---------------- */

struct DesignState
{
    RunMetrics metrics;
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    /* Alloy detail. */
    std::uint64_t mapMispredicts = 0;
    std::uint64_t wastedOffchip = 0;
    std::uint64_t dirtyEvictions = 0;
    /* Banshee detail. */
    std::uint64_t fills = 0;
    std::uint64_t bypassed = 0;
    std::uint64_t fillBlocks = 0;
    std::uint64_t tbHits = 0;
    std::uint64_t tbFlushes = 0;
    std::uint64_t flushedMappings = 0;
};

DesignState
runDesign(const std::string &design, SimMode warmup_mode)
{
    WorkloadSpec spec = makeWorkload(WorkloadKind::WebSearch);
    SyntheticTraceSource trace(spec);
    Experiment::Config cfg;
    cfg.design = design;
    cfg.capacityMb = 16;
    cfg.pod.warmupMode = warmup_mode;
    Experiment exp(cfg, trace);
    DesignState r;
    r.metrics = exp.run(150'000, 100'000);
    r.demandAccesses = exp.memory().demandAccesses();
    r.demandHits = exp.memory().demandHits();
    if (auto *alloy = dynamic_cast<AlloyCache *>(&exp.memory())) {
        r.mapMispredicts = alloy->mapMispredicts();
        r.wastedOffchip = alloy->wastedOffchipReads();
        r.dirtyEvictions = alloy->dirtyEvictions();
    }
    if (auto *banshee =
            dynamic_cast<BansheeCache *>(&exp.memory())) {
        r.fills = banshee->pageFills();
        r.bypassed = banshee->bypassedMisses();
        r.fillBlocks = banshee->fillBlocksWritten();
        r.tbHits = banshee->tagBufferHits();
        r.tbFlushes = banshee->tagFlushes();
        r.flushedMappings = banshee->flushedMappings();
    }
    return r;
}

void
expectIdentical(const DesignState &a, const DesignState &b)
{
    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.llcMisses, b.metrics.llcMisses);
    EXPECT_EQ(a.metrics.demandAccesses,
              b.metrics.demandAccesses);
    EXPECT_EQ(a.metrics.demandHits, b.metrics.demandHits);
    EXPECT_EQ(a.metrics.memLatencyCycles,
              b.metrics.memLatencyCycles);
    EXPECT_EQ(a.metrics.offchipBytes, b.metrics.offchipBytes);
    EXPECT_EQ(a.metrics.stackedBytes, b.metrics.stackedBytes);
    EXPECT_EQ(a.demandAccesses, b.demandAccesses);
    EXPECT_EQ(a.demandHits, b.demandHits);
    EXPECT_EQ(a.mapMispredicts, b.mapMispredicts);
    EXPECT_EQ(a.wastedOffchip, b.wastedOffchip);
    EXPECT_EQ(a.dirtyEvictions, b.dirtyEvictions);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.bypassed, b.bypassed);
    EXPECT_EQ(a.fillBlocks, b.fillBlocks);
    EXPECT_EQ(a.tbHits, b.tbHits);
    EXPECT_EQ(a.tbFlushes, b.tbFlushes);
    EXPECT_EQ(a.flushedMappings, b.flushedMappings);
}

TEST(TwoPhaseDesigns, AlloyWarmupModesBitIdentical)
{
    DesignState func = runDesign("alloy", SimMode::Functional);
    DesignState timed = runDesign("alloy", SimMode::Timed);
    expectIdentical(func, timed);
    // Sanity: the design really hit and really mispredicted.
    EXPECT_GT(func.demandHits, 0u);
    EXPECT_LT(func.demandHits, func.demandAccesses);
    EXPECT_GT(func.mapMispredicts, 0u);
}

TEST(TwoPhaseDesigns, BansheeWarmupModesBitIdentical)
{
    DesignState func = runDesign("banshee", SimMode::Functional);
    DesignState timed = runDesign("banshee", SimMode::Timed);
    expectIdentical(func, timed);
    EXPECT_GT(func.demandHits, 0u);
    EXPECT_GT(func.fills, 0u);
    // Bandwidth-aware replacement: some misses fill nothing.
    EXPECT_GT(func.bypassed, 0u);
    EXPECT_GT(func.tbHits, 0u);
}

TEST(TwoPhaseDesigns, FunctionalWarmupSkipsDramModel)
{
    for (const char *design : {"alloy", "banshee"}) {
        WorkloadSpec spec =
            makeWorkload(WorkloadKind::WebSearch);
        SyntheticTraceSource trace(spec);
        Experiment::Config cfg;
        cfg.design = design;
        cfg.capacityMb = 16;
        cfg.pod.warmupMode = SimMode::Functional;
        Experiment exp(cfg, trace);
        exp.run(150'000, 0); // warmup only
        EXPECT_EQ(exp.stacked()->totalBytes(), 0u) << design;
        EXPECT_EQ(exp.offchip().totalBytes(), 0u) << design;
        EXPECT_GT(exp.memory().demandAccesses(), 0u) << design;
    }
}

TEST(Designs, BansheeFillsLessThanPageBased)
{
    // The design's reason to exist: far fewer blocks moved into
    // the cache than a fill-every-miss page organization.
    WorkloadSpec spec = makeWorkload(WorkloadKind::WebSearch);
    SyntheticTraceSource trace(spec);
    Experiment::Config cfg;
    cfg.design = "banshee";
    cfg.capacityMb = 16;
    Experiment exp(cfg, trace);
    exp.run(100'000, 100'000);
    auto *banshee = dynamic_cast<BansheeCache *>(&exp.memory());
    ASSERT_NE(banshee, nullptr);
    // Fills happened for fewer pages than there were misses.
    const std::uint64_t misses =
        banshee->demandAccesses() - banshee->demandHits();
    EXPECT_LT(banshee->pageFills(), misses);
}

/* --------------------- frontier pairing ----------------------- */

TEST(Frontier, SameTracePairingAcrossDesigns)
{
    ExperimentRegistry reg;
    fpcbench::registerAllExperiments(reg);
    const ExperimentDef *def = reg.find("frontier");
    ASSERT_NE(def, nullptr);
    SweepOptions opts;
    const std::vector<ExperimentPoint> points = def->build(opts);
    ASSERT_FALSE(points.empty());

    // All seven designs appear, and within one workload every
    // design's point replays the same trace (identical seed).
    std::map<std::string, std::set<std::string>> designs_by_wl;
    std::map<std::string, std::set<std::uint64_t>> seeds_by_wl;
    for (const ExperimentPoint &p : points) {
        const std::string wl = workloadName(p.workload);
        designs_by_wl[wl].insert(p.cfg.design);
        seeds_by_wl[wl].insert(p.traceSeed());
    }
    for (const auto &[wl, designs] : designs_by_wl) {
        EXPECT_EQ(designs.size(), 7u) << wl;
        EXPECT_TRUE(designs.count("alloy")) << wl;
        EXPECT_TRUE(designs.count("banshee")) << wl;
        EXPECT_TRUE(designs.count("footprint")) << wl;
        EXPECT_EQ(seeds_by_wl[wl].size(), 1u)
            << wl << ": designs must pair on one trace";
    }
}

TEST(Frontier, PointsRunWithExtras)
{
    // One cheap frontier point end to end: the custom runner
    // must emit the three frontier axes as extras.
    ExperimentRegistry reg;
    fpcbench::registerAllExperiments(reg);
    const ExperimentDef *def = reg.find("frontier");
    ASSERT_NE(def, nullptr);
    SweepOptions opts;
    opts.scale = 0.005;
    opts.workloadFilter = "WebSearch";
    std::vector<ExperimentPoint> points = def->build(opts);
    ASSERT_FALSE(points.empty());
    // Smallest capacity to keep the unit test fast.
    for (ExperimentPoint &p : points)
        p.cfg.capacityMb = 64;
    const PointResult r = runPoint(points.front());
    std::set<std::string> names;
    for (const auto &[name, value] : r.extra)
        names.insert(name);
    EXPECT_TRUE(names.count("hit_ratio"));
    EXPECT_TRUE(names.count("avg_access_latency_cycles"));
    EXPECT_TRUE(names.count("offchip_gbps"));
}

} // namespace
} // namespace fpc

/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace fpc {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    c += 5;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accum, AddAndReset)
{
    Accum a;
    a.add(1.5);
    a.add(2.5);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 4); // buckets [0,10) [10,20) [20,30) [30,40) +of
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);  // overflow
    h.sample(400); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 2u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Histogram, WeightedSamplesAndMean)
{
    Histogram h(1, 10);
    h.sample(2, 3); // three samples of value 2
    h.sample(8, 1);
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(Histogram, Reset)
{
    Histogram h(1, 4);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, FindAndDump)
{
    StatGroup g("grp");
    Counter c;
    Accum a;
    g.regCounter(&c, "events", "number of events");
    g.regAccum(&a, "energy", "energy in nJ");
    c.inc(42);
    a.add(3.25);

    EXPECT_EQ(g.findCounter("events"), &c);
    EXPECT_EQ(g.findCounter("missing"), nullptr);
    EXPECT_EQ(g.findAccum("energy"), &a);
    EXPECT_EQ(g.findAccum("events"), nullptr);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"group\": \"grp\""), std::string::npos);
    EXPECT_NE(out.find("\"events\": 42"), std::string::npos);
    EXPECT_NE(out.find("\"energy\""), std::string::npos);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '\n');
}

TEST(StatGroup, DumpJsonEscapesNames)
{
    StatGroup g("we\"ird\n");
    Counter c;
    g.regCounter(&c, "qu\"ote", "line\nbreak");
    std::string out;
    g.dumpJson(out);
    // The raw quote and newline must not survive unescaped.
    EXPECT_NE(out.find("we\\\"ird\\n"), std::string::npos);
    EXPECT_NE(out.find("qu\\\"ote"), std::string::npos);
    EXPECT_EQ(out.find("line\nbreak"), std::string::npos);
}

TEST(StatGroup, VisitInRegistrationOrder)
{
    StatGroup g("grp");
    Counter c1, c2;
    Accum a;
    Histogram h(4, 4);
    Log2Histogram lh;
    g.regCounter(&c1, "first", "");
    g.regCounter(&c2, "second", "");
    g.regAccum(&a, "acc", "");
    g.regHistogram(&h, "hist", "");
    g.regLog2Histogram(&lh, "log2", "");
    c1.inc(1);
    c2.inc(2);
    a.add(0.5);
    h.sample(3);
    lh.sample(9);

    struct Collect : StatVisitor
    {
        std::vector<std::string> names;
        std::uint64_t counterSum = 0;
        double accumSum = 0.0;
        std::uint64_t histTotal = 0;

        void
        counter(const std::string &name, const std::string &,
                std::uint64_t value) override
        {
            names.push_back(name);
            counterSum += value;
        }

        void
        accum(const std::string &name, const std::string &,
              double value) override
        {
            names.push_back(name);
            accumSum += value;
        }

        void
        histogram(const std::string &name, const std::string &,
                  const Histogram &hh) override
        {
            names.push_back(name);
            histTotal += hh.totalSamples();
        }

        void
        log2Histogram(const std::string &name,
                      const std::string &,
                      const Log2Histogram &hh) override
        {
            names.push_back(name);
            histTotal += hh.totalSamples();
        }
    } v;
    g.visit(v);
    const std::vector<std::string> expect = {
        "first", "second", "acc", "hist", "log2"};
    EXPECT_EQ(v.names, expect);
    EXPECT_EQ(v.counterSum, 3u);
    EXPECT_DOUBLE_EQ(v.accumSum, 0.5);
    EXPECT_EQ(v.histTotal, 2u);
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("grp");
    Counter c;
    Accum a;
    g.regCounter(&c, "c", "");
    g.regAccum(&a, "a", "");
    c.inc(7);
    a.add(7.0);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

} // namespace
} // namespace fpc

/**
 * @file
 * Multi-tenant colocation tests: address-space layout, partition
 * policy parsing and mechanics, tenant-mix trace routing, metric
 * conservation (per-tenant sums must equal the aggregate metrics
 * bit-exactly for every registered design), policy effects,
 * two-phase warmup equivalence under tenant mixes, sweep-level
 * determinism of the colocation experiment, and the writeTextFile
 * parent-directory satellite.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "experiments/experiments.hh"
#include "sim/sweep.hh"
#include "tenant/colocation.hh"
#include "tenant/mix_source.hh"
#include "tenant/partition.hh"
#include "workload/generator.hh"

namespace fpc {
namespace {

using fpcbench::registerAllExperiments;

TEST(TenantAddr, BaseAndOwnerRoundTrip)
{
    EXPECT_EQ(tenantAddrBase(0), 0u);
    EXPECT_EQ(tenantOfAddr(0x1234), 0u);
    const Addr base1 = tenantAddrBase(1);
    EXPECT_EQ(tenantOfAddr(base1 | 0xdeadbeef), 1u);
    EXPECT_EQ(tenantOfAddr(tenantAddrBase(3) + (1ull << 40)), 3u);
    // Workload footprints stay far below one tenant space.
    EXPECT_GT(base1, Addr{16} << 30);
}

TEST(TenantPartitionParams, ParsesPoliciesAndDefaults)
{
    DesignParams bag;
    TenantPartitionParams def =
        TenantPartitionParams::fromParams(bag);
    EXPECT_EQ(def.tenants, 1u);
    EXPECT_EQ(def.policy, TenantPolicy::Shared);
    EXPECT_FALSE(def.active());

    bag.set("tenant.count", "2");
    bag.set("tenant.policy", "setpart");
    bag.set("tenant.share0", "3");
    TenantPartitionParams sp =
        TenantPartitionParams::fromParams(bag);
    EXPECT_TRUE(sp.active());
    EXPECT_EQ(sp.policy, TenantPolicy::SetPartition);
    ASSERT_EQ(sp.shares.size(), 2u);
    EXPECT_DOUBLE_EQ(sp.shares[0], 3.0);
    EXPECT_DOUBLE_EQ(sp.shares[1], 1.0);
    // Quota fractions default share-proportionally.
    EXPECT_DOUBLE_EQ(sp.quotas[0], 0.75);
    EXPECT_DOUBLE_EQ(sp.quotas[1], 0.25);

    bag.set("tenant.policy", "bogus");
    EXPECT_THROW(TenantPartitionParams::fromParams(bag),
                 std::runtime_error);
    bag.set("tenant.policy", "quota");
    bag.set("tenant.quota0", "1.5");
    EXPECT_THROW(TenantPartitionParams::fromParams(bag),
                 std::runtime_error);
    bag.set("tenant.quota0", "0.25");
    TenantPartitionParams q =
        TenantPartitionParams::fromParams(bag);
    EXPECT_EQ(q.policy, TenantPolicy::Quota);
    EXPECT_DOUBLE_EQ(q.quotas[0], 0.25);
}

TEST(TenantPartitionParams, SetPartitionRangesDisjointAndCover)
{
    DesignParams bag;
    bag.set("tenant.count", "3");
    bag.set("tenant.policy", "setpart");
    bag.set("tenant.share0", "2");
    TenantPartitionParams params =
        TenantPartitionParams::fromParams(bag);

    const std::uint64_t sets = 1024;
    SetPartitionSpec spec = params.setPartition(sets, 11);
    ASSERT_TRUE(spec.enabled);
    ASSERT_EQ(spec.ranges.size(), 3u);
    std::uint64_t covered = 0;
    std::uint64_t next_base = 0;
    for (const auto &[base, count] : spec.ranges) {
        EXPECT_EQ(base, next_base);
        EXPECT_GE(count, 1u);
        next_base = base + count;
        covered += count;
    }
    EXPECT_EQ(covered, sets);
    // Tenant 0 weighs 2 of 4: half the sets.
    EXPECT_EQ(spec.ranges[0].second, sets / 2);

    // Every unit maps into its owner's range.
    for (std::uint32_t t = 0; t < 3; ++t) {
        const std::uint64_t unit =
            (static_cast<std::uint64_t>(t)
             << spec.tenantShift) |
            0x3fffu;
        const std::uint64_t set = spec.setOf(unit);
        EXPECT_GE(set, spec.ranges[t].first);
        EXPECT_LT(set,
                  spec.ranges[t].first + spec.ranges[t].second);
    }

    // Shared/quota policies produce a disabled spec.
    bag.set("tenant.policy", "shared");
    EXPECT_FALSE(TenantPartitionParams::fromParams(bag)
                     .setPartition(sets, 11)
                     .enabled);
}

TEST(TenantQuota, EnforcesOccupancyCap)
{
    DesignParams bag;
    bag.set("tenant.count", "2");
    bag.set("tenant.policy", "quota");
    bag.set("tenant.quota0", "0.25");
    bag.set("tenant.quota1", "0.75");
    TenantQuota quota = TenantPartitionParams::fromParams(bag)
                            .quota(100);
    ASSERT_TRUE(quota.enabled());
    EXPECT_EQ(quota.limit(0), 25u);
    EXPECT_EQ(quota.limit(1), 75u);

    for (unsigned i = 0; i < 25; ++i) {
        EXPECT_TRUE(quota.mayFill(0, false, 0));
        quota.charge(0);
    }
    // At quota: new frames only by replacing one's own.
    EXPECT_FALSE(quota.mayFill(0, false, 0));
    EXPECT_FALSE(quota.mayFill(0, true, 1));
    EXPECT_TRUE(quota.mayFill(0, true, 0));
    EXPECT_TRUE(quota.mayFill(1, true, 0));
    quota.release(0);
    EXPECT_TRUE(quota.mayFill(0, true, 1));
    EXPECT_EQ(quota.held(0), 24u);
}

TEST(TenantMixSource, RoutesCoresAndStampsIdentity)
{
    auto make = [](WorkloadKind wk) {
        return std::make_unique<SyntheticTraceSource>(
            makeWorkload(wk, 2048, 7));
    };
    std::vector<std::unique_ptr<TraceSource>> inner;
    inner.push_back(make(WorkloadKind::WebSearch));
    inner.push_back(make(WorkloadKind::DataServing));
    TenantMixSource mix(std::move(inner), {8, 8});
    EXPECT_FALSE(mix.coreAgnostic());

    // Solo references replaying the same identities.
    SyntheticTraceSource ref0(
        makeWorkload(WorkloadKind::WebSearch, 2048, 7));
    SyntheticTraceSource ref1(
        makeWorkload(WorkloadKind::DataServing, 2048, 7));

    TraceRecord rec, ref;
    for (unsigned i = 0; i < 2000; ++i) {
        const unsigned core = (i * 5) % 16; // both groups
        ASSERT_TRUE(mix.next(core, rec));
        const unsigned tenant = core < 8 ? 0 : 1;
        EXPECT_EQ(rec.req.tenantId, tenant);
        EXPECT_EQ(tenantOfAddr(rec.req.paddr), tenant);
        ASSERT_TRUE((tenant == 0 ? ref0 : ref1).next(core, ref));
        EXPECT_EQ(rec.req.paddr & (tenantAddrBase(1) - 1),
                  ref.req.paddr);
        EXPECT_EQ(rec.req.pc, ref.req.pc);
        EXPECT_EQ(rec.req.op, ref.req.op);
        EXPECT_EQ(rec.computeGap, ref.computeGap);
    }
    EXPECT_GT(mix.consumedRecords(0), 0u);
    EXPECT_GT(mix.consumedRecords(1), 0u);

    // Unowned cores see an exhausted stream.
    TenantMixSource solo_mix(
        [&] {
            std::vector<std::unique_ptr<TraceSource>> v;
            v.push_back(make(WorkloadKind::WebSearch));
            return v;
        }(),
        {8});
    EXPECT_FALSE(solo_mix.next(12, rec));
    TraceRecord *span = nullptr;
    EXPECT_EQ(solo_mix.acquire(12, span), 0u);
    EXPECT_TRUE(solo_mix.next(3, rec));
}

TEST(TenantMixSource, AcquireSpansMatchNextStream)
{
    auto make = [](WorkloadKind wk) {
        return std::make_unique<SyntheticTraceSource>(
            makeWorkload(wk, 2048, 11));
    };
    std::vector<std::unique_ptr<TraceSource>> a, b;
    a.push_back(make(WorkloadKind::WebSearch));
    a.push_back(make(WorkloadKind::MapReduce));
    b.push_back(make(WorkloadKind::WebSearch));
    b.push_back(make(WorkloadKind::MapReduce));
    TenantMixSource span_mix(std::move(a), {4, 12});
    TenantMixSource next_mix(std::move(b), {4, 12});

    // Batch consumption (partial skips included) must replay the
    // exact per-record stream, per core group.
    for (unsigned round = 0; round < 200; ++round) {
        const unsigned core = (round % 2) ? 2 : 9;
        TraceRecord *span = nullptr;
        const std::size_t avail = span_mix.acquire(core, span);
        ASSERT_GT(avail, 0u);
        const std::size_t take =
            std::min<std::size_t>(avail, 1 + round % 7);
        for (std::size_t i = 0; i < take; ++i) {
            TraceRecord rec;
            ASSERT_TRUE(next_mix.next(core, rec));
            EXPECT_EQ(span[i].req.paddr, rec.req.paddr);
            EXPECT_EQ(span[i].req.tenantId, rec.req.tenantId);
            EXPECT_EQ(span[i].req.pc, rec.req.pc);
        }
        span_mix.skip(take);
    }
}

/** Per-tenant slices must sum bit-exactly to the aggregate. */
void
expectConservation(const RunMetrics &m, std::size_t num_tenants)
{
    ASSERT_EQ(m.tenants.size(), num_tenants);
    TenantMetrics sum;
    for (const TenantMetrics &tm : m.tenants) {
        sum.traceRecords += tm.traceRecords;
        sum.instructions += tm.instructions;
        sum.llcMisses += tm.llcMisses;
        sum.demandAccesses += tm.demandAccesses;
        sum.demandHits += tm.demandHits;
        sum.memLatencyCycles += tm.memLatencyCycles;
        sum.offchipBytes += tm.offchipBytes;
    }
    EXPECT_EQ(sum.traceRecords, m.traceRecords);
    EXPECT_EQ(sum.instructions, m.instructions);
    EXPECT_EQ(sum.llcMisses, m.llcMisses);
    EXPECT_EQ(sum.demandAccesses, m.demandAccesses);
    EXPECT_EQ(sum.demandHits, m.demandHits);
    EXPECT_EQ(sum.memLatencyCycles, m.memLatencyCycles);
    EXPECT_EQ(sum.offchipBytes, m.offchipBytes);
}

TEST(TenantConservation, EveryDesignSumsToAggregate)
{
    // For every registered organization: a paired mix's
    // per-tenant metrics must sum bit-exactly to the aggregate
    // metrics of the same run, for every attributed field.
    for (const std::string &design :
         DesignRegistry::instance().names()) {
        ExperimentPoint p = makeColocationPoint(
            {{WorkloadKind::WebSearch, 8, 0.0},
             {WorkloadKind::DataServing, 8, 0.0}},
            design, "shared", 0.02, 42);
        const PointResult r = runColocationPoint(p);
        SCOPED_TRACE(design);
        expectConservation(r.metrics, 2);
        EXPECT_GT(r.metrics.tenants[0].traceRecords, 0u);
        EXPECT_GT(r.metrics.tenants[1].traceRecords, 0u);
        EXPECT_GT(r.metrics.tenants[0].instructions, 0u);
    }
}

TEST(TenantConservation, HoldsUnderEveryPolicy)
{
    for (const char *policy : {"shared", "setpart", "quota"}) {
        for (const char *design : {"footprint", "block", "alloy",
                                   "banshee"}) {
            ExperimentPoint p = makeColocationPoint(
                {{WorkloadKind::WebSearch, 8, 0.0},
                 {WorkloadKind::MapReduce, 8, 0.0}},
                design, policy, 0.01, 42);
            const PointResult r = runColocationPoint(p);
            SCOPED_TRACE(std::string(design) + "/" + policy);
            expectConservation(r.metrics, 2);
        }
    }
}

TEST(TenantConservation, SoloMixHasOneTenantSlice)
{
    ExperimentPoint p = makeColocationPoint(
        {{WorkloadKind::WebSearch, 8, 0.0}}, "footprint",
        "shared", 0.01, 42);
    const PointResult r = runColocationPoint(p);
    expectConservation(r.metrics, 1);
    // Half the pod runs, the other half idles.
    EXPECT_GT(r.metrics.traceRecords, 0u);
}

/** Build a two-tenant mix source over fresh synthetic streams. */
std::unique_ptr<TenantMixSource>
makePairMix(std::uint64_t seed_base)
{
    std::vector<std::unique_ptr<TraceSource>> inner;
    inner.push_back(std::make_unique<SyntheticTraceSource>(
        makeWorkload(WorkloadKind::WebSearch, 2048,
                     traceIdentitySeed(WorkloadKind::WebSearch,
                                       2048, seed_base))));
    inner.push_back(std::make_unique<SyntheticTraceSource>(
        makeWorkload(WorkloadKind::DataServing, 2048,
                     traceIdentitySeed(
                         WorkloadKind::DataServing, 2048,
                         seed_base))));
    return std::make_unique<TenantMixSource>(std::move(inner),
                                             std::vector<unsigned>{
                                                 8, 8});
}

TEST(TenantPolicies, QuotaBypassesEngageAndBound)
{
    // A punitive quota on tenant 0 must force quota bypasses in
    // the footprint cache while tenant 1 keeps allocating.
    Experiment::Config cfg;
    cfg.design = "footprint";
    cfg.capacityMb = 64;
    encodeTenantMix(cfg,
                    {{WorkloadKind::WebSearch, 8, 0.002},
                     {WorkloadKind::DataServing, 8, 0.9}},
                    "quota");
    cfg.pod.numTenants = 2;
    auto mix = makePairMix(42);
    Experiment exp(cfg, *mix);
    const RunMetrics m = exp.run(60'000, 60'000);
    ASSERT_NE(exp.footprintCache(), nullptr);
    EXPECT_GT(exp.footprintCache()->quotaBypasses(), 0u);
    expectConservation(m, 2);
}

TEST(TenantPolicies, SetPartitionChangesPlacementOnly)
{
    // setpart must still produce a valid, conserved run and must
    // differ from shared for a cacheful design under pressure.
    auto run = [&](const char *policy) {
        Experiment::Config cfg;
        cfg.design = "page";
        cfg.capacityMb = 64;
        encodeTenantMix(cfg,
                        {{WorkloadKind::WebSearch, 8, 0.0},
                         {WorkloadKind::DataServing, 8, 0.0}},
                        policy);
        cfg.pod.numTenants = 2;
        auto mix = makePairMix(42);
        Experiment exp(cfg, *mix);
        return exp.run(60'000, 60'000);
    };
    const RunMetrics shared = run("shared");
    const RunMetrics part = run("setpart");
    expectConservation(shared, 2);
    expectConservation(part, 2);
    EXPECT_EQ(shared.traceRecords, part.traceRecords);
    // Same demand stream, different placement outcome.
    EXPECT_EQ(shared.demandAccesses, part.demandAccesses);
    EXPECT_NE(shared.demandHits, part.demandHits);
}

TEST(TenantTwoPhase, WarmupModesBitIdenticalUnderMix)
{
    // The two-phase engine's invariant must survive tenant mixes
    // and quota policies: Functional and Timed warmup leave
    // bit-identical measured metrics, per tenant included.
    auto run = [&](SimMode mode) {
        Experiment::Config cfg;
        cfg.design = "footprint";
        cfg.capacityMb = 64;
        encodeTenantMix(cfg,
                        {{WorkloadKind::WebSearch, 8, 0.3},
                         {WorkloadKind::DataServing, 8, 0.7}},
                        "quota");
        cfg.pod.numTenants = 2;
        cfg.pod.warmupMode = mode;
        auto mix = makePairMix(42);
        Experiment exp(cfg, *mix);
        return exp.run(40'000, 40'000);
    };
    const RunMetrics a = run(SimMode::Functional);
    const RunMetrics b = run(SimMode::Timed);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.demandAccesses, b.demandAccesses);
    EXPECT_EQ(a.demandHits, b.demandHits);
    EXPECT_EQ(a.offchipBytes, b.offchipBytes);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
        EXPECT_EQ(a.tenants[t].demandAccesses,
                  b.tenants[t].demandAccesses);
        EXPECT_EQ(a.tenants[t].demandHits,
                  b.tenants[t].demandHits);
        EXPECT_EQ(a.tenants[t].memLatencyCycles,
                  b.tenants[t].memLatencyCycles);
        EXPECT_EQ(a.tenants[t].offchipBytes,
                  b.tenants[t].offchipBytes);
    }
}

/** Colocation subset: the first pair across two designs. */
std::vector<ExperimentPoint>
colocationSubset()
{
    std::vector<ExperimentPoint> points;
    for (const char *design : {"footprint", "banshee"}) {
        for (const char *policy : {"shared", "quota"}) {
            points.push_back(makeColocationPoint(
                {{WorkloadKind::WebSearch, 8, 0.0},
                 {WorkloadKind::DataServing, 8, 0.0}},
                design, policy, 0.01, 42));
        }
        points.push_back(makeColocationPoint(
            {{WorkloadKind::WebSearch, 8, 0.0}}, design,
            "shared", 0.01, 42));
    }
    return points;
}

void
expectTenantsIdentical(const RunMetrics &a, const RunMetrics &b,
                       const std::string &key)
{
    ASSERT_EQ(a.tenants.size(), b.tenants.size()) << key;
    EXPECT_EQ(a.demandAccesses, b.demandAccesses) << key;
    EXPECT_EQ(a.cycles, b.cycles) << key;
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
        EXPECT_EQ(a.tenants[t].demandAccesses,
                  b.tenants[t].demandAccesses)
            << key;
        EXPECT_EQ(a.tenants[t].demandHits,
                  b.tenants[t].demandHits)
            << key;
        EXPECT_EQ(a.tenants[t].memLatencyCycles,
                  b.tenants[t].memLatencyCycles)
            << key;
        EXPECT_EQ(a.tenants[t].offchipBytes,
                  b.tenants[t].offchipBytes)
            << key;
    }
}

TEST(TenantSweep, JobsAndCacheModesBitIdentical)
{
    const std::vector<ExperimentPoint> points =
        colocationSubset();
    TraceCacheConfig off;
    off.enabled = false;
    const std::vector<PointResult> serial =
        SweepRunner(1).run(points);
    const std::vector<PointResult> sharded =
        SweepRunner(8).run(points);
    const std::vector<PointResult> uncached =
        SweepRunner(4, off).run(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
        expectTenantsIdentical(serial[i].metrics,
                               sharded[i].metrics,
                               points[i].key());
        expectTenantsIdentical(serial[i].metrics,
                               uncached[i].metrics,
                               points[i].key());
    }

    // The rendered JSON is byte-identical too.
    SweepOptions opts;
    opts.scale = 0.01;
    ExperimentRun a{"colocation", "t", points, serial};
    ExperimentRun b{"colocation", "t", points, uncached};
    opts.jobs = 1;
    opts.traceCache = true;
    const std::string json_a = renderSweepJson(opts, {a});
    opts.jobs = 8;
    opts.traceCache = false;
    const std::string json_b = renderSweepJson(opts, {b});
    EXPECT_EQ(json_a, json_b);
    EXPECT_NE(json_a.find("\"tenants\": ["), std::string::npos);
    EXPECT_NE(json_a.find("\"hit_ratio\""), std::string::npos);
}

TEST(TenantSweep, ColocationRegistryExpansion)
{
    ExperimentRegistry reg;
    registerAllExperiments(reg);
    const ExperimentDef *def = reg.find("colocation");
    ASSERT_NE(def, nullptr);
    SweepOptions opts;
    const std::vector<ExperimentPoint> points = def->build(opts);
    // 7 designs x (3 solos + 3 pairs + 2 policy points).
    EXPECT_EQ(points.size(), 7u * 8u);
    std::size_t paired = 0;
    for (const ExperimentPoint &p : points) {
        EXPECT_TRUE(p.custom != nullptr) << p.key();
        if (!p.extraTraceNeeds.empty())
            ++paired;
    }
    EXPECT_EQ(paired, 7u * 5u);

    // The mix decodes back from the params bag.
    const auto tenants = decodeTenantMix(points.back());
    EXPECT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].cores, 8u);
}

TEST(TenantSweep, BaseSeedFlagAliasesSeed)
{
    SweepOptions opts;
    const char *argv[] = {"sweep", "--base-seed", "1234"};
    int i = 1;
    EXPECT_TRUE(parseCommonFlag(
        opts, 3, const_cast<char **>(argv), i));
    EXPECT_EQ(opts.seed, 1234u);
    EXPECT_EQ(i, 2);

    // Trace identities include the seed: a different base seed
    // is a different identity (and a different stream).
    EXPECT_NE(
        traceIdentityKey(WorkloadKind::WebSearch, 2048, 42),
        traceIdentityKey(WorkloadKind::WebSearch, 2048, 1234));
    EXPECT_NE(
        traceIdentitySeed(WorkloadKind::WebSearch, 2048, 42),
        traceIdentitySeed(WorkloadKind::WebSearch, 2048, 1234));
}

TEST(TenantSweep, WriteTextFileCreatesMissingParents)
{
    const std::filesystem::path root =
        std::filesystem::temp_directory_path() /
        "fpc_tenant_out_test";
    std::filesystem::remove_all(root);
    const std::filesystem::path nested =
        root / "a" / "b" / "out.json";
    EXPECT_TRUE(writeTextFile(nested.string(), "{}\n"));
    EXPECT_TRUE(std::filesystem::exists(nested));

    // Regression guard: an unwritable destination (a parent
    // component that is a regular file) reports failure instead
    // of dying mid-sweep.
    const std::filesystem::path blocker = root / "file";
    EXPECT_TRUE(writeTextFile(blocker.string(), "x"));
    const std::filesystem::path bad =
        blocker / "sub" / "out.json";
    EXPECT_FALSE(writeTextFile(bad.string(), "{}\n"));
    std::filesystem::remove_all(root);
}

} // namespace
} // namespace fpc
